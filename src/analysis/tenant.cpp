#include "analysis/tenant.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace esp::an {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<double> poisson_schedule(std::uint64_t seed, int n,
                                     double mean_gap, double start) {
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<std::size_t>(n));
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
  double t = start;
  for (int i = 0; i < n; ++i) {
    // Uniform in (0, 1]: never 0, so log() stays finite.
    const double u =
        (static_cast<double>(splitmix64(s) >> 11) + 1.0) / 9007199254740993.0;
    t += -mean_gap * std::log(u);
    arrivals.push_back(t);
  }
  return arrivals;
}

AdmissionController::AdmissionController(mpi::ProcEnv& env, FabricConfig cfg)
    : env_(env), cfg_(std::move(cfg)) {
  for (const auto& t : cfg_.tenants) records_[t.app_id] = Record{};
  const auto& ep = env_.runtime->config().elastic;
  if (ep.resolved() && ep.active()) elastic_ = net::ElasticSchedule(ep);
}

std::uint64_t AdmissionController::quota_bytes(const TenantSpec& t) const {
  return t.quota.stream_bytes;  // Session pre-derives 0 -> n*async*block.
}

/// Release fact for an admitted tenant: detach time, or the crash oracle.
bool AdmissionController::release_known(int app_id, double* when) const {
  const auto it = records_.find(app_id);
  if (it == records_.end()) return false;
  if (it->second.released) {
    *when = it->second.t_release;
    return true;
  }
  return false;
}

void AdmissionController::drain_control(mpi::RankContext& rc) {
  // All control traffic is out-of-band: probe + receive under a clock
  // warp so the root's data-plane virtual clock (which feeds stream
  // backpressure through max(sender, receiver)) never sees it.
  const double saved = rc.clock;
  mpi::Status st;
  while (env_.universe.piprobe(mpi::kAnySource, kTenantAttachTag, &st)) {
    TenantAttach a;
    env_.universe.precv(&a, sizeof a, st.source, kTenantAttachTag);
    auto& rec = records_[a.app_id];
    if (!rec.attached) {
      rec.attached = true;
      rec.arrival = a.arrival;
      pending_.push_back(a.app_id);
    }
  }
  while (env_.universe.piprobe(mpi::kAnySource, kTenantDetachTag, &st)) {
    TenantDetach d;
    env_.universe.precv(&d, sizeof d, st.source, kTenantDetachTag);
    auto& rec = records_[d.app_id];
    if (!rec.released) {
      rec.released = true;
      rec.t_release = d.t_release;
      active_.erase(std::remove(active_.begin(), active_.end(), d.app_id),
                    active_.end());
    }
  }
  // Progress-engine bookkeeping: with the engine on, control-tag drains
  // are work a dedicated progress rank would perform. The drain's clock
  // cost is real-time racy (how many messages are queued depends on
  // thread interleaving), so it is booked in the lane's *diagnostic*
  // fields only — never into `absorbed` or `frontier`, whose values must
  // stay a pure function of the virtual schedule (see net/progress.hpp).
  if (env_.runtime->config().progress.enabled && rc.clock > saved) {
    auto& lane = env_.runtime->progress_lane(rc.world_rank);
    lane.control_seconds += rc.clock - saved;
    ++lane.control_drains;
  }
  rc.clock = saved;

  // Crash-oracle sweep: a tenant whose rank 0 died will never attach or
  // detach again; resolve it from the recorded (deterministic, virtual)
  // death time. Runs *after* the message drain so an attach/detach that
  // was sent before the crash point is always consumed first.
  auto& rt = *env_.runtime;
  for (const auto& t : cfg_.tenants) {
    auto& rec = records_[t.app_id];
    if (rec.released) continue;
    if (!rt.rank_dead(t.rank0_world)) continue;
    const double td = rt.death_time(t.rank0_world);
    if (!rec.attached) {
      // Died before the attach could be sent: never ran, never decided.
      rec.attached = true;
      rec.decided = true;
      rec.arrival = t.arrival;
      rec.released = true;
      rec.released_by_death = true;
      rec.t_release = td;
    } else if (!rec.decided) {
      // Died while waiting for a verdict. Its siblings observe the dead
      // relay and deterministically self-admit at the arrival time, so
      // the root's books must say the same.
      rec.decided = true;
      rec.admitted = true;
      rec.t_admit = rec.arrival;
      ++admitted_total_;
      pending_.erase(std::remove(pending_.begin(), pending_.end(), t.app_id),
                     pending_.end());
      rec.released = true;
      rec.released_by_death = true;
      rec.t_release = td;
    } else if (rec.admitted) {
      rec.released = true;
      rec.released_by_death = true;
      rec.t_release = td;
      active_.erase(std::remove(active_.begin(), active_.end(), t.app_id),
                    active_.end());
    }
  }
}

void AdmissionController::decide(mpi::RankContext& rc) {
  auto& rt = *env_.runtime;
  // Strict (arrival, app_id) order: the head of the queue decides first,
  // later arrivals never jump it. This makes every verdict a function of
  // facts that are themselves deterministic.
  std::sort(pending_.begin(), pending_.end(), [this](int a, int b) {
    const auto& ra = records_.at(a);
    const auto& rb = records_.at(b);
    if (ra.arrival != rb.arrival) return ra.arrival < rb.arrival;
    return a < b;
  });

  while (!pending_.empty()) {
    const int app = pending_.front();
    const TenantSpec* spec = cfg_.find(app);
    auto& rec = records_.at(app);
    const bool elastic_cap =
        cfg_.max_active_per_member > 0 && elastic_.enabled();
    const bool unconstrained = cfg_.max_active <= 0 &&
                               cfg_.stream_bytes_cap == 0 && !elastic_cap;

    // Occupancy of the already-admitted set at candidate time t:
    //   certain-active:  release known and > t, or rank 0's published
    //                    progress clock is already past t (its eventual
    //                    release time can only be later);
    //   certain-gone:    release known and <= t;
    //   unknown:         neither — the decision must wait for the fact.
    auto occupancy_at = [&](double t, int* n_active,
                            std::uint64_t* bytes_active) -> bool {
      *n_active = 0;
      *bytes_active = 0;
      for (const auto& tn : cfg_.tenants) {
        if (tn.app_id == app) continue;
        const auto& r = records_.at(tn.app_id);
        if (!r.decided || !r.admitted) continue;
        double rel;
        bool is_active;
        if (release_known(tn.app_id, &rel)) {
          is_active = rel > t;
        } else if (rt.progress_clock(tn.rank0_world) > t) {
          is_active = true;
        } else {
          return false;  // fact not yet known
        }
        if (is_active) {
          ++(*n_active);
          *bytes_active += quota_bytes(tn);
        }
      }
      return true;
    };
    auto fits = [&](double t, int n_active, std::uint64_t bytes_active) {
      if (cfg_.max_active > 0 && n_active >= cfg_.max_active) return false;
      if (elastic_cap) {
        // The ceiling scales with the member set active at t: a planned
        // shrink lowers it (later arrivals re-queue), a warm-join raises
        // it. Pure function of the elastic schedule, so deterministic.
        const int members = static_cast<int>(
            elastic_.active_at(elastic_.epoch_at(t)).size());
        if (n_active >= cfg_.max_active_per_member * members) return false;
      }
      if (cfg_.stream_bytes_cap > 0 &&
          bytes_active + (spec ? quota_bytes(*spec) : 0) >
              cfg_.stream_bytes_cap)
        return false;
      return true;
    };

    double t_admit = rec.arrival;
    bool decidable = true;
    bool admit = true;
    if (!unconstrained) {
      // Walk candidate admit times: the arrival, then each known release
      // after it, until the capacity check passes with certainty.
      for (;;) {
        int n_active;
        std::uint64_t bytes_active;
        if (!occupancy_at(t_admit, &n_active, &bytes_active)) {
          decidable = false;
          break;
        }
        if (fits(t_admit, n_active, bytes_active)) break;
        // Saturated at t_admit: advance to the next known release, or —
        // under an elastic ceiling — the next membership epoch boundary
        // (a warm-join there may raise the cap).
        double next = kInf;
        for (const auto& tn : cfg_.tenants) {
          if (tn.app_id == app) continue;
          const auto& r = records_.at(tn.app_id);
          double rel;
          if (r.decided && r.admitted && release_known(tn.app_id, &rel) &&
              rel > t_admit)
            next = std::min(next, rel);
        }
        if (elastic_cap) {
          for (int e = 1; e < elastic_.epoch_count(); ++e) {
            const double bt = elastic_.epoch_time(e);
            if (bt > t_admit) {
              next = std::min(next, bt);
              break;  // epoch times ascend: the first > t_admit is minimal
            }
          }
        }
        if (next == kInf) {
          // Saturated by tenants whose releases are not yet known.
          decidable = false;
          break;
        }
        t_admit = next;
      }
      if (decidable && cfg_.max_admission_delay > 0.0 &&
          t_admit - rec.arrival > cfg_.max_admission_delay) {
        admit = false;
        t_admit = rec.arrival + cfg_.max_admission_delay;
      }
    }
    if (!decidable) break;  // head blocks the queue until facts arrive

    pending_.erase(pending_.begin());
    rec.decided = true;
    rec.admitted = admit;
    rec.t_admit = t_admit;
    if (admit) {
      ++admitted_total_;
      active_.push_back(app);
    } else {
      ++rejected_total_;
      // A rejected tenant runs no workload and holds no capacity.
      rec.released = true;
      rec.t_release = t_admit;
    }

    // Ship the verdict, stamped at the deterministic decision time. The
    // clock warp makes the sender-side t_ready equal t_admit regardless
    // of where the root's data-plane clock happens to be.
    if (spec && !rt.rank_dead(spec->rank0_world)) {
      const double saved = rc.clock;
      rc.clock = t_admit;
      TenantVerdict v;
      v.app_id = app;
      v.admitted = admit ? 1 : 0;
      v.t_admit = t_admit;
      env_.universe.psend(&v, sizeof v, spec->rank0_world, kTenantVerdictTag);
      rc.clock = saved;
    }
  }
}

bool AdmissionController::poll(mpi::RankContext& rc) {
  drain_control(rc);
  decide(rc);
  for (const auto& t : cfg_.tenants) {
    const auto& rec = records_.at(t.app_id);
    if (!rec.attached || !rec.decided) return false;
    if (rec.admitted && !rec.released) return false;
  }
  return true;
}

}  // namespace esp::an
