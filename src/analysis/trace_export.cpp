#include "analysis/trace_export.hpp"

#include <algorithm>
#include <fstream>

namespace esp::an {

TraceFilter filter_kinds(std::vector<inst::EventKind> kinds) {
  return [kinds = std::move(kinds)](const inst::Event& ev) {
    return std::find(kinds.begin(), kinds.end(), ev.kind) != kinds.end();
  };
}

TraceFilter filter_ranks(int min_rank, int max_rank) {
  return [min_rank, max_rank](const inst::Event& ev) {
    return ev.rank >= min_rank && ev.rank <= max_rank;
  };
}

void TraceExport::register_on(bb::Blackboard& board, const AppLevel& level) {
  const auto app_id = static_cast<std::uint32_t>(level.app_id);
  auto op = [this, app_id](bb::Blackboard&,
                           std::span<const bb::DataEntry> entries) {
    const auto events = entries[0].payload->as<inst::Event>();
    std::lock_guard lock(mu_);
    for (const inst::Event& ev : events) {
      if (filter_ && !filter_(ev)) {
        ++dropped_;
        continue;
      }
      EtfRecord rec;
      rec.app_id = app_id;
      rec.event = ev;
      records_.push_back(rec);
    }
  };
  board.register_ks(
      {"trace_export:" + level.name, {mpi_events_type(level)}, op});
  board.register_ks(
      {"trace_export_posix:" + level.name, {posix_events_type(level)}, op});
}

std::vector<EtfRecord> TraceExport::records() const {
  std::lock_guard lock(mu_);
  return records_;
}

std::uint64_t TraceExport::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

bool TraceExport::write(const std::string& path, int app_id) const {
  std::lock_guard lock(mu_);
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  std::vector<const EtfRecord*> selected;
  selected.reserve(records_.size());
  for (const auto& r : records_) {
    if (app_id >= 0 && r.app_id != static_cast<std::uint32_t>(app_id))
      continue;
    selected.push_back(&r);
  }
  EtfHeader h;
  h.app_id = app_id >= 0 ? static_cast<std::uint32_t>(app_id) : ~0u;
  h.record_count = selected.size();
  os.write(reinterpret_cast<const char*>(&h), sizeof h);
  for (const auto* r : selected)
    os.write(reinterpret_cast<const char*>(r), sizeof *r);
  return static_cast<bool>(os);
}

bool TraceReader::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  is.read(reinterpret_cast<char*>(&header_), sizeof header_);
  if (!is || header_.magic != EtfHeader::kMagic || header_.version != 1)
    return false;
  records_.resize(header_.record_count);
  is.read(reinterpret_cast<char*>(records_.data()),
          static_cast<std::streamsize>(records_.size() * sizeof(EtfRecord)));
  return is.gcount() ==
         static_cast<std::streamsize>(records_.size() * sizeof(EtfRecord));
}

}  // namespace esp::an
