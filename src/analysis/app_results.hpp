#pragma once
/// \file app_results.hpp
/// \brief Final per-application analysis products: what the paper's
/// profiling report contains (one chapter per instrumented application).

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/tenant.hpp"
#include "instrument/event.hpp"

namespace esp::an {

/// Flat slot index for every event kind (MPI kinds then POSIX kinds).
inline constexpr std::size_t kMpiKinds =
    static_cast<std::size_t>(mpi::CallKind::kCount);
inline constexpr std::size_t kKindSlots = kMpiKinds + 3;

constexpr std::size_t kind_slot(inst::EventKind k) noexcept {
  const auto v = static_cast<std::uint32_t>(k);
  if (v < kMpiKinds) return v;
  return kMpiKinds + (v - static_cast<std::uint32_t>(inst::EventKind::PosixOpen));
}

const char* kind_slot_name(std::size_t slot) noexcept;

/// Per-call-kind aggregate (the MPI interface profile).
struct KindStats {
  std::uint64_t hits = 0;
  double time = 0.0;
  std::uint64_t bytes = 0;
};

/// One cell of the point-to-point communication matrix, weighted "in hits,
/// total size and total time" (paper §IV-D).
struct CommCell {
  std::uint64_t hits = 0;
  std::uint64_t bytes = 0;
  double time = 0.0;
};

/// Density-map metrics (Fig. 18): one value per application rank.
enum class DensityMetric : std::size_t {
  SendHits = 0,     ///< Number of MPI_Send-family calls (Fig. 18a).
  P2pBytes,         ///< Total point-to-point size (Fig. 18b/e).
  WaitTime,         ///< Time in MPI wait calls (Fig. 18d).
  CollTime,         ///< Time in collectives (Fig. 18c).
  PosixBytes,       ///< POSIX IO volume.
  PosixTime,        ///< POSIX IO time.
  kCount,
};
inline constexpr std::size_t kDensityMetrics =
    static_cast<std::size_t>(DensityMetric::kCount);
const char* density_metric_name(DensityMetric m) noexcept;

/// Per-application temporal activity raster (§IV-D "temporal maps"):
/// rank x time-bin seconds spent inside instrumented calls.
struct TemporalMap {
  double bin_seconds = 5e-3;
  std::vector<std::vector<double>> per_rank;  ///< [rank][bin] seconds.

  std::size_t bins() const {
    std::size_t n = 0;
    for (const auto& r : per_rank) n = std::max(n, r.size());
    return n;
  }
};

/// Per-application wait-state summary (late-sender analysis).
struct WaitStates {
  /// Seconds of receive-side blocking beyond the modelled wire time.
  std::vector<double> late_time_per_rank;
  /// Aggregate wait-state seconds per (waiting rank << 32 | peer) pair.
  std::map<std::uint64_t, double> pair_wait;

  double total() const {
    double t = 0;
    for (double v : late_time_per_rank) t += v;
    return t;
  }
};

/// What the analyzer *failed* to learn about one application: the
/// data-loss ledger. Populated from stream framing (sequence gaps, CRC
/// failures) and the runtime's crash records, and carried through the
/// rank-0 reduction so the report can state how trustworthy it is.
struct LossLedger {
  std::vector<int> dead_ranks;  ///< App ranks that crashed mid-run.
  std::uint64_t blocks_lost = 0;       ///< Sequence gaps on event streams.
  std::uint64_t blocks_corrupted = 0;  ///< CRC/framing failures (discarded).
  std::uint64_t blocks_retried = 0;    ///< Corrupt blocks skipped-and-continued.
  /// Upper bound on events never analyzed: each lost or corrupt block
  /// could have carried a full pack.
  std::uint64_t events_dropped_estimate = 0;

  bool clean() const noexcept {
    return dead_ranks.empty() && blocks_lost == 0 && blocks_corrupted == 0;
  }
};

/// Transport-side telemetry for one application: how much event traffic
/// its stream links actually carried into the analyzer. Folded into the
/// report chapter so per-app numbers can be sanity-checked against the
/// loss ledger.
struct AppTelemetry {
  std::uint64_t stream_blocks = 0;  ///< Blocks delivered over app links.
  std::uint64_t stream_bytes = 0;   ///< Payload bytes delivered.
  std::uint64_t failover_joins = 0;   ///< Links adopted after a reader died.
  std::uint64_t blocks_replayed = 0;  ///< Resend-window blocks replayed onto them.
  /// Links adopted through planned elastic drain handoffs (clean by
  /// construction: charge nothing to the loss ledger).
  std::uint64_t planned_handoffs = 0;
};

/// Fidelity accounting for one application: how many of its event packs
/// arrived at each rung of the degradation ladder. Weighted (sampled /
/// aggregated) packs mean the profile is statistical, not exact — the
/// report flags it.
struct DegradeStats {
  std::uint64_t packs_full = 0;
  std::uint64_t packs_sampled = 0;
  std::uint64_t packs_aggregated = 0;

  bool degraded() const noexcept {
    return packs_sampled != 0 || packs_aggregated != 0;
  }
};

/// Tenant-fabric accounting for one application: its admission outcome,
/// what the per-tenant quotas shed, which blackboard work it was charged
/// for, and its event-to-flush latency distribution (the isolation
/// metric). Admission metadata is filled by the fabric root; the shed /
/// job / latency counters are reduced across analyzer ranks.
struct TenantStats {
  bool fabric = false;  ///< Ran under the tenant fabric at all.
  bool admitted = false;
  bool rejected = false;
  double arrival = 0.0;
  double t_admit = 0.0;
  double t_release = 0.0;
  bool released_by_death = false;  ///< Released by crashing, not detaching.
  std::uint64_t packs_shed = 0;   ///< Packs dropped by rate/job quotas.
  std::uint64_t events_shed = 0;  ///< Event records inside shed packs.
  std::uint64_t jobs_executed = 0;  ///< Blackboard jobs charged to it.
  std::uint64_t jobs_failed = 0;
  std::uint64_t ks_quarantined = 0;
  LatencyHist latency;  ///< Event-to-flush latency (virtual seconds).
};

/// Everything the analyzer learned about one application.
struct AppResults {
  int app_id = -1;
  std::string name;
  int size = 0;

  std::array<KindStats, kKindSlots> per_kind{};
  std::uint64_t total_events = 0;
  double last_event_time = 0.0;  ///< Max t_end seen (≈ app activity span).

  /// Sparse p2p matrix keyed (src << 32 | dst), src/dst app ranks.
  std::map<std::uint64_t, CommCell> comm;

  /// Per-rank density vectors, indexed by DensityMetric.
  std::array<std::vector<double>, kDensityMetrics> density;

  /// Extended analyses (populated when the analyzer enables them).
  TemporalMap temporal;
  WaitStates waits;

  /// What never made it into the numbers above.
  LossLedger loss;

  /// How the transport behaved while carrying it.
  AppTelemetry telemetry;

  /// At which fidelity it arrived (degradation ladder accounting).
  DegradeStats degrade;

  /// Its life as a fabric tenant (zero-initialized outside fabric mode).
  TenantStats tenant;

  static std::uint64_t comm_key(std::int32_t src, std::int32_t dst) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(dst);
  }
  static std::int32_t comm_src(std::uint64_t key) noexcept {
    return static_cast<std::int32_t>(key >> 32);
  }
  static std::int32_t comm_dst(std::uint64_t key) noexcept {
    return static_cast<std::int32_t>(key & 0xffffffffu);
  }
};

/// Whole-session engine telemetry, reduced over every analyzer rank:
/// how hard the measurement machinery itself worked.
struct SessionTelemetry {
  std::uint64_t jobs_executed = 0;      ///< Blackboard operation invocations.
  std::uint64_t jobs_stolen = 0;        ///< Jobs migrated between workers.
  std::uint64_t batches_submitted = 0;  ///< Blackboard submission batches.
  std::uint64_t blocks_read = 0;        ///< Stream blocks drained.
  std::uint64_t bytes_read = 0;         ///< Stream payload bytes drained.
  std::uint64_t eagain_returns = 0;     ///< Empty non-blocking stream polls.
};

/// Whole-session degradation summary: did the measurement infrastructure
/// itself take damage, and is the report to be trusted?
struct SessionHealth {
  std::uint64_t jobs_failed = 0;     ///< Blackboard operations that threw.
  std::uint64_t ks_quarantined = 0;  ///< Knowledge sources removed for it.
  std::vector<int> dead_world_ranks;     ///< Every crashed rank (world ids).
  std::vector<int> dead_analyzer_ranks;  ///< Analyzer partition ranks lost.
  SessionTelemetry telemetry;

  // Tenant-fabric roll-up (all zero outside fabric mode).
  std::uint64_t tenants_admitted = 0;
  std::uint64_t tenants_rejected = 0;
  std::uint64_t tenant_packs_shed = 0;  ///< Packs dropped by quota shedding.

  // Elastic-membership roll-up (all zero under fixed membership).
  std::uint64_t membership_epochs = 0;  ///< Epochs in the elastic plan.
  std::uint64_t members_joined = 0;     ///< Warm-joins scheduled.
  std::uint64_t members_left = 0;       ///< Drain-and-leaves scheduled.
  std::uint64_t planned_handoffs = 0;   ///< Drain handoffs adopted (clean).
  std::uint64_t failover_joins = 0;     ///< Crash handoffs adopted.
  std::uint64_t join_announcements = 0; ///< Warm-join announces received.

  bool degraded() const noexcept {
    return jobs_failed != 0 || ks_quarantined != 0 ||
           !dead_world_ranks.empty();
  }
};

/// Thread-safe sink filled by analyzer rank 0 after the final reduction;
/// gives tests and benches programmatic access to the report content.
struct AnalysisResults {
  std::mutex mu;
  std::map<int, AppResults> apps;  ///< Keyed by app (partition) id.
  SessionHealth health;

  AppResults* find(int app_id) {
    auto it = apps.find(app_id);
    return it == apps.end() ? nullptr : &it->second;
  }
};

}  // namespace esp::an
