#pragma once
/// \file analyzer.hpp
/// \brief The distributed analysis engine's program main.
///
/// Each analyzer rank (the "Analyzer" partition of Fig. 10):
///  1. maps every application partition additively (VMPI_Map),
///  2. opens a read stream over the mapping,
///  3. runs a parallel blackboard with the dispatcher / unpacker /
///     profiling KS modules registered once per application level,
///  4. loops: read block -> push event pack on the blackboard (which frees
///     the stream buffer immediately, per the paper), until every writer
///     has closed,
///  5. drains the blackboard, reduces per-application partial results to
///     a surviving analyzer rank (the first one with no crash scheduled
///     under the fault plan; rank 0 when no faults are injected), which
///     emits the chaptered report "briefly after execution ends".
///
/// Virtual-time model: the analyzer rank charges
/// `per_event_cost / workers` seconds per event read, modelling the
/// parallel blackboard's throughput; this is the consumption rate that
/// creates stream backpressure for over-producing applications.

#include <memory>
#include <string>

#include "analysis/app_results.hpp"
#include "analysis/tenant.hpp"
#include "blackboard/blackboard.hpp"
#include "simmpi/runtime.hpp"
#include "vmpi/map.hpp"
#include "vmpi/stream.hpp"

namespace esp::an {

struct AnalyzerConfig {
  bb::BlackboardConfig board{.workers = 4, .fifo_count = 16};
  std::uint64_t block_size = 1u << 20;
  int n_async = 3;
  /// Max stream blocks drained per blackboard submission: one batched
  /// submit_batch() per burst instead of one lock round-trip per block.
  int read_batch = 16;
  /// Analysis CPU cost per event (divided by worker count).
  double per_event_cost = 100e-9;
  vmpi::MapPolicy map_policy = vmpi::MapPolicy::RoundRobin;
  vmpi::BalancePolicy stream_policy = vmpi::BalancePolicy::RoundRobin;
  /// Extended analyses (temporal maps, wait-state/late-sender detection).
  bool enable_temporal = true;
  bool enable_wait_states = true;
  double temporal_bin_seconds = 5e-3;
  /// Report directory; empty disables file output.
  std::string output_dir;
  /// Optional programmatic sink, filled by the reduce root.
  std::shared_ptr<AnalysisResults> results;
  /// Tenant fabric: when enabled, the reduce root doubles as admission
  /// root (non-blocking read loop interleaved with control-plane polling),
  /// per-tenant quotas shed flooding links, and departed tenants are torn
  /// down (blackboard KSs removed, stream slots reclaimed) without
  /// touching the survivors.
  FabricConfig fabric;
};

/// Run the analyzer on the calling rank. Use as the partition main:
///   progs.push_back({"analyzer", n, [&](ProcEnv& env) {
///     an::run_analyzer(env, cfg); }});
void run_analyzer(mpi::ProcEnv& env, const AnalyzerConfig& cfg);

}  // namespace esp::an
