#pragma once
/// \file trace_export.hpp
/// \brief Selective trace export — the paper's "IO proxy" future work:
/// "we are already working on the implementation of a module, acting as
/// an IO proxy, to generate selective traces in the OTF2 format in order
/// to combine our analysis with existing tools such as Vampir".
///
/// TraceExport is a blackboard knowledge source that filters the event
/// stream by kind and/or rank and appends the survivors to a compact
/// binary trace (ETF — "esperf trace format"), so a downstream
/// post-mortem viewer can replay exactly the slice of interest while the
/// online analysis keeps running. A TraceReader loads ETF files back.
///
/// ETF layout (little-endian, host structs — the same "C structure is
/// directly sent" philosophy as the stream protocol):
///   [EtfHeader][EtfRecord...]

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/modules.hpp"

namespace esp::an {

struct EtfHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = 1;
  std::uint32_t app_id = 0;
  std::uint32_t reserved = 0;
  std::uint64_t record_count = 0;

  static constexpr std::uint32_t kMagic = 0x31465445;  // "ETF1"
};
static_assert(std::is_trivially_copyable_v<EtfHeader>);

struct EtfRecord {
  std::uint32_t app_id = 0;
  std::uint32_t pad = 0;
  inst::Event event;
};
static_assert(std::is_trivially_copyable_v<EtfRecord>);

/// Event filter: return true to keep. Default keeps everything.
using TraceFilter = std::function<bool(const inst::Event&)>;

/// Convenience filters.
TraceFilter filter_kinds(std::vector<inst::EventKind> kinds);
TraceFilter filter_ranks(int min_rank, int max_rank);

/// The IO-proxy knowledge source. Thread-safe; one instance may serve
/// several levels (records carry the app id).
class TraceExport {
 public:
  explicit TraceExport(TraceFilter filter = nullptr)
      : filter_(std::move(filter)) {}

  /// Register the collecting KS for one application level.
  void register_on(bb::Blackboard& board, const AppLevel& level);

  /// Records collected so far (snapshot).
  std::vector<EtfRecord> records() const;
  std::uint64_t dropped() const;

  /// Write one application's records (or all with app_id = -1) as an ETF
  /// file. Returns false on IO failure.
  bool write(const std::string& path, int app_id = -1) const;

 private:
  TraceFilter filter_;
  mutable std::mutex mu_;
  std::vector<EtfRecord> records_;
  std::uint64_t dropped_ = 0;
};

/// Post-mortem reader for ETF files.
class TraceReader {
 public:
  /// Load a trace; returns false on missing/corrupt file.
  bool load(const std::string& path);

  const EtfHeader& header() const noexcept { return header_; }
  const std::vector<EtfRecord>& records() const noexcept { return records_; }

 private:
  EtfHeader header_;
  std::vector<EtfRecord> records_;
};

}  // namespace esp::an
